// Package transport provides the simulated network substrate replacing the
// paper's LAN + Spread toolkit: an in-process message fabric between named
// nodes with injectable link failures (network partitions), a configurable
// per-hop cost model, and delivery statistics.
//
// Delivery is synchronous (request/response), matching the synchronous
// update propagation of the dissertation's replication protocol (§4.3), but
// every send is bounded by a context.Context: a cancelled or expired context
// fails the send like ErrUnreachable without delivering the message, which is
// what bounded blocking during partitions requires. An optional retry policy
// masks transient message drops of the paper's lossy-link model (§1.1), and
// an optional per-link latency injector (LatencyFunc) adds jitter on top of
// the fixed cost model for tail-latency experiments.
// Partitions are injected with Partition and repaired with Heal; topology
// watchers (the group membership service) are notified on every change in
// epoch order.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dedisys/internal/obs"
	"dedisys/internal/simtime"
)

// NodeID names one node of the system.
type NodeID string

// Errors of the transport layer.
var (
	// ErrUnreachable reports that the destination is in another partition or
	// crashed. Node failures are treated as single-node partitions (§1.1).
	// Context cancellation and expiry surface through the same error (with
	// the context error in the wrap chain): a send abandoned by its caller is
	// indistinguishable from a lost message at the protocol level.
	ErrUnreachable = errors.New("transport: node unreachable")
	// ErrUnknownNode reports a message to a node that never joined.
	ErrUnknownNode = errors.New("transport: unknown node")
	// ErrNoHandler reports that the destination has no handler for the kind.
	ErrNoHandler = errors.New("transport: no handler for message kind")
)

// Handler processes one request message and produces a response.
type Handler func(from NodeID, payload any) (any, error)

// Stats counts transport activity.
type Stats struct {
	Messages int64 // successfully delivered requests
	Failures int64 // sends that failed with ErrUnreachable
	Dropped  int64 // messages lost by the drop injector
	Retries  int64 // re-sends performed by the retry policy
}

// CostModel simulates the time cost of one network hop. The zero value costs
// nothing (unit tests); experiments use a calibrated cost to reproduce the
// shape of the paper's 100 Mbit LAN numbers.
type CostModel struct {
	// PerMessage is the fixed round-trip cost charged per delivered message.
	PerMessage time.Duration
}

// RetryPolicy masks transient message loss (§1.1: links "may fail by losing
// some messages") by re-sending failed messages. Attempts is the total number
// of tries (values below 1 mean a single try); Backoff is the simulated cost
// charged before every re-send, so retried messages pay realistic latency
// under the calibrated cost model.
type RetryPolicy struct {
	Attempts int
	Backoff  time.Duration
}

// DropFunc decides whether one message is lost in transit (the paper's link
// model: links "may fail by losing some messages", §1.1). Dropped messages
// fail with ErrUnreachable at the sender, like a timed-out request.
type DropFunc func(from, to NodeID, kind string) bool

// LatencyFunc injects extra per-link latency for one message — the jitter
// analogue of DropFunc. It is consulted once per delivery attempt and its
// result is charged as simulated time on top of the fixed cost model, so
// experiments can model asymmetric links and heavy latency tails (slow
// replicas) rather than a uniform hop cost. The charge honours the send's
// context: a caller that gives up mid-latency abandons the message like a
// timed-out request.
type LatencyFunc func(from, to NodeID, kind string) time.Duration

// Network is the simulated fabric. It is safe for concurrent use.
type Network struct {
	cost CostModel
	obs  *obs.Observer

	mu       sync.RWMutex
	nodes    map[NodeID]*endpoint
	group    map[NodeID]int // partition index per node; all 0 when healthy
	epoch    int64          // bumped on every topology change
	watchers []func(epoch int64)
	drop     DropFunc
	latency  LatencyFunc
	retry    RetryPolicy

	// notifyMu serialises watcher notification outside n.mu; lastNotified
	// keeps notifications monotone in epoch when topology changes overlap.
	notifyMu     sync.Mutex
	lastNotified int64

	messages *obs.Counter
	failures *obs.Counter
	dropped  *obs.Counter
	retries  *obs.Counter
	sendTime *obs.Histogram
}

type endpoint struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	up       bool
}

// Option configures a Network.
type Option func(*Network)

// WithCost installs a per-hop cost model.
func WithCost(c CostModel) Option {
	return func(n *Network) { n.cost = c }
}

// WithRetry installs a send retry policy.
func WithRetry(p RetryPolicy) Option {
	return func(n *Network) { n.retry = p }
}

// WithLatency installs a per-link latency injector.
func WithLatency(l LatencyFunc) Option {
	return func(n *Network) { n.latency = l }
}

// WithObserver attaches the fabric to a shared observability scope; without
// it the network observes into a private registry.
func WithObserver(o *obs.Observer) Option {
	return func(n *Network) { n.obs = o }
}

// NewNetwork creates an empty fabric.
func NewNetwork(opts ...Option) *Network {
	n := &Network{
		nodes: make(map[NodeID]*endpoint),
		group: make(map[NodeID]int),
	}
	for _, o := range opts {
		o(n)
	}
	if n.obs == nil {
		n.obs = obs.New()
	}
	n.messages = n.obs.Counter("transport.messages")
	n.failures = n.obs.Counter("transport.failures")
	n.dropped = n.obs.Counter("transport.dropped")
	n.retries = n.obs.Counter("transport.retries")
	n.sendTime = n.obs.Histogram("transport.send.duration")
	return n
}

// Observer returns the network's observability scope.
func (n *Network) Observer() *obs.Observer { return n.obs }

// SetRetry installs (or clears, with the zero value) the send retry policy.
func (n *Network) SetRetry(p RetryPolicy) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.retry = p
}

// Join adds a node to the fabric (initially in the common partition).
func (n *Network) Join(id NodeID) error {
	n.mu.Lock()
	if _, ok := n.nodes[id]; ok {
		n.mu.Unlock()
		return fmt.Errorf("transport: node %s already joined", id)
	}
	n.nodes[id] = &endpoint{handlers: make(map[string]Handler), up: true}
	n.group[id] = 0
	n.epoch++
	n.notifyAndUnlock()
	return nil
}

// Nodes returns all joined node IDs, sorted.
func (n *Network) Nodes() []NodeID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Handle registers the handler for one message kind on a node.
func (n *Network) Handle(id NodeID, kind string, h Handler) error {
	n.mu.RLock()
	ep, ok := n.nodes[id]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.handlers[kind] = h
	return nil
}

// Send delivers a request from one node to another and returns the response.
// It fails with ErrUnreachable when the nodes are in different partitions,
// the destination is crashed, or the context is cancelled or past its
// deadline (the message is then not delivered). When a retry policy is
// installed, transiently failed sends are re-tried up to Attempts times with
// the policy's Backoff charged as simulated cost before each re-send.
func (n *Network) Send(ctx context.Context, from, to NodeID, kind string, payload any) (any, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n.mu.RLock()
	retry := n.retry
	n.mu.RUnlock()
	attempts := retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var resp any
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			n.retries.Inc()
			simtime.Charge(retry.Backoff)
		}
		resp, err = n.sendOnce(ctx, from, to, kind, payload)
		if err == nil || !errors.Is(err, ErrUnreachable) || ctx.Err() != nil {
			// Only transient unreachability is worth re-trying; unknown nodes,
			// missing handlers and cancelled contexts fail permanently.
			return resp, err
		}
	}
	return resp, err
}

// sendOnce performs one delivery attempt.
func (n *Network) sendOnce(ctx context.Context, from, to NodeID, kind string, payload any) (any, error) {
	if cerr := ctx.Err(); cerr != nil {
		n.failures.Inc()
		return nil, fmt.Errorf("%w: %s -> %s: %w", ErrUnreachable, from, to, cerr)
	}
	n.mu.RLock()
	ep, known := n.nodes[to]
	reachable := known && n.connectedLocked(from, to)
	drop := n.drop
	latency := n.latency
	n.mu.RUnlock()
	if !known {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	if !reachable {
		n.failures.Inc()
		return nil, fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	if drop != nil && drop(from, to, kind) {
		n.dropped.Inc()
		n.failures.Inc()
		if n.obs.Tracing() {
			n.obs.Emit(obs.EventMessageDrop, fmt.Sprintf("%s -> %s %s", from, to, kind))
		}
		return nil, fmt.Errorf("%w: %s -> %s (message lost)", ErrUnreachable, from, to)
	}
	ep.mu.RLock()
	h, ok := ep.handlers[kind]
	ep.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s on %s", ErrNoHandler, kind, to)
	}
	// The hop cost — fixed model plus injected per-link latency — may
	// outlive the caller's deadline: the charge then aborts early and the
	// request is abandoned in flight without being delivered.
	hop := n.cost.PerMessage
	if latency != nil {
		hop += latency(from, to, kind)
	}
	if cerr := simtime.ChargeCtx(ctx, hop); cerr != nil {
		n.failures.Inc()
		return nil, fmt.Errorf("%w: %s -> %s: %w", ErrUnreachable, from, to, cerr)
	}
	if cerr := ctx.Err(); cerr != nil {
		n.failures.Inc()
		return nil, fmt.Errorf("%w: %s -> %s: %w", ErrUnreachable, from, to, cerr)
	}
	n.messages.Inc()
	if n.obs.Tracing() {
		// Timing and event emission only when tracing is on: the hot path
		// stays at atomic counter cost so CCM-overhead ratios are unaffected.
		n.obs.Emit(obs.EventMessageSend, fmt.Sprintf("%s -> %s %s", from, to, kind))
		start := time.Now()
		res, err := h(from, payload)
		n.sendTime.Observe(time.Since(start))
		return res, err
	}
	return h(from, payload)
}

// Connected reports whether two nodes can currently communicate.
func (n *Network) Connected(a, b NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.connectedLocked(a, b)
}

// Reachable reports whether to is currently reachable from from: the
// single-peer fast path of ReachableFrom. Callers asking about one peer (the
// failure detector's per-heartbeat ground-truth check, protocol-level "can I
// reach the coordinator" probes) avoid building and sorting the full view
// slice — one map lookup instead of an O(nodes log nodes) allocation.
func (n *Network) Reachable(from, to NodeID) bool {
	return n.Connected(from, to)
}

func (n *Network) connectedLocked(a, b NodeID) bool {
	if a == b {
		epA, okA := n.nodes[a]
		return okA && epA.up
	}
	epA, okA := n.nodes[a]
	epB, okB := n.nodes[b]
	if !okA || !okB || !epA.up || !epB.up {
		return false
	}
	return n.group[a] == n.group[b]
}

// ReachableFrom returns the nodes reachable from the given node (including
// itself when up), sorted. This defines the node's current view.
func (n *Network) ReachableFrom(id NodeID) []NodeID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []NodeID
	for other := range n.nodes {
		if n.connectedLocked(id, other) {
			out = append(out, other)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Partition splits the fabric into the given groups. Nodes not mentioned in
// any group form one additional partition together. Crashed state of nodes
// is unaffected.
func (n *Network) Partition(groups ...[]NodeID) {
	n.mu.Lock()
	assigned := make(map[NodeID]bool)
	for i, g := range groups {
		for _, id := range g {
			n.group[id] = i + 1
			assigned[id] = true
		}
	}
	for id := range n.nodes {
		if !assigned[id] {
			n.group[id] = 0
		}
	}
	n.epoch++
	n.notifyAndUnlock()
}

// Heal repairs all link failures, reuniting every partition.
func (n *Network) Heal() {
	n.mu.Lock()
	for id := range n.group {
		n.group[id] = 0
	}
	n.epoch++
	n.notifyAndUnlock()
}

// Crash marks a node failed (a pause-crash per §1.1): it is unreachable from
// everyone until Recover.
func (n *Network) Crash(id NodeID) {
	n.mu.Lock()
	if ep, ok := n.nodes[id]; ok {
		ep.up = false
		n.epoch++
		n.notifyAndUnlock()
		return
	}
	n.mu.Unlock()
}

// Recover brings a crashed node back.
func (n *Network) Recover(id NodeID) {
	n.mu.Lock()
	if ep, ok := n.nodes[id]; ok {
		ep.up = true
		n.epoch++
		n.notifyAndUnlock()
		return
	}
	n.mu.Unlock()
}

// Epoch returns the topology epoch, bumped on every change.
func (n *Network) Epoch() int64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.epoch
}

// Watch registers a callback invoked after every topology change with the
// epoch of that change. Notifications are serialised and monotone in epoch:
// when changes overlap, a notification that lost the race to a newer one is
// suppressed (its watchers have already seen the newer state).
func (n *Network) Watch(fn func(epoch int64)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.watchers = append(n.watchers, fn)
}

// notifyAndUnlock snapshots the watcher list and epoch, releases n.mu (so
// watchers may query the network) and notifies under notifyMu. Overlapping
// Partition/Heal/Crash calls therefore cannot deliver notifications out of
// epoch order: the stale notification is dropped after the newer one ran.
func (n *Network) notifyAndUnlock() {
	epoch := n.epoch
	watchers := make([]func(int64), len(n.watchers))
	copy(watchers, n.watchers)
	n.mu.Unlock()

	n.notifyMu.Lock()
	defer n.notifyMu.Unlock()
	if epoch <= n.lastNotified {
		return // a newer change already notified; this snapshot is stale
	}
	n.lastNotified = epoch
	for _, w := range watchers {
		w(epoch)
	}
}

// SetDrop installs (or clears, with nil) the message-loss injector.
func (n *Network) SetDrop(d DropFunc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.drop = d
}

// SetLatency installs (or clears, with nil) the per-link latency injector.
func (n *Network) SetLatency(l LatencyFunc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = l
}

// Stats returns delivery counters.
func (n *Network) Stats() Stats {
	return Stats{
		Messages: n.messages.Load(),
		Failures: n.failures.Load(),
		Dropped:  n.dropped.Load(),
		Retries:  n.retries.Load(),
	}
}

// ResetStats zeroes the delivery counters.
func (n *Network) ResetStats() {
	n.messages.Reset()
	n.failures.Reset()
	n.dropped.Reset()
	n.retries.Reset()
}

package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newThreeNodeNet(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	for _, id := range []NodeID{"n1", "n2", "n3"} {
		if err := n.Join(id); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func TestJoinAndNodes(t *testing.T) {
	n := newThreeNodeNet(t)
	got := n.Nodes()
	if len(got) != 3 || got[0] != "n1" || got[2] != "n3" {
		t.Fatalf("Nodes = %v", got)
	}
	if err := n.Join("n1"); err == nil {
		t.Fatal("duplicate join accepted")
	}
}

func TestSendAndHandlers(t *testing.T) {
	n := newThreeNodeNet(t)
	if err := n.Handle("n2", "ping", func(from NodeID, payload any) (any, error) {
		return string(from) + ":" + payload.(string), nil
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := n.Send(context.Background(), "n1", "n2", "ping", "hello")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "n1:hello" {
		t.Fatalf("resp = %v", resp)
	}
	if _, err := n.Send(context.Background(), "n1", "n2", "nope", nil); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("missing handler err = %v", err)
	}
	if _, err := n.Send(context.Background(), "n1", "ghost", "ping", nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown node err = %v", err)
	}
	if err := n.Handle("ghost", "ping", nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Handle unknown err = %v", err)
	}
	st := n.Stats()
	if st.Messages != 1 {
		t.Fatalf("messages = %d", st.Messages)
	}
}

func TestPartitionBlocksTraffic(t *testing.T) {
	n := newThreeNodeNet(t)
	if err := n.Handle("n3", "ping", func(NodeID, any) (any, error) { return "pong", nil }); err != nil {
		t.Fatal(err)
	}
	n.Partition([]NodeID{"n1", "n2"}, []NodeID{"n3"})
	if n.Connected("n1", "n3") {
		t.Fatal("partitioned nodes connected")
	}
	if !n.Connected("n1", "n2") {
		t.Fatal("same-partition nodes disconnected")
	}
	if _, err := n.Send(context.Background(), "n1", "n3", "ping", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("cross-partition send err = %v", err)
	}
	if n.Stats().Failures != 1 {
		t.Fatalf("failures = %d", n.Stats().Failures)
	}
	n.Heal()
	if !n.Connected("n1", "n3") {
		t.Fatal("heal did not reconnect")
	}
	if _, err := n.Send(context.Background(), "n1", "n3", "ping", nil); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
}

func TestPartitionUnmentionedNodesShareGroupZero(t *testing.T) {
	n := newThreeNodeNet(t)
	n.Partition([]NodeID{"n1"})
	if n.Connected("n1", "n2") {
		t.Fatal("n1 should be isolated")
	}
	if !n.Connected("n2", "n3") {
		t.Fatal("unmentioned nodes should stay together")
	}
}

func TestCrashRecover(t *testing.T) {
	n := newThreeNodeNet(t)
	n.Crash("n2")
	if n.Connected("n1", "n2") || n.Connected("n2", "n2") {
		t.Fatal("crashed node still connected")
	}
	got := n.ReachableFrom("n1")
	if len(got) != 2 || got[0] != "n1" || got[1] != "n3" {
		t.Fatalf("ReachableFrom = %v", got)
	}
	if got := n.ReachableFrom("n2"); len(got) != 0 {
		t.Fatalf("crashed node reach = %v", got)
	}
	n.Recover("n2")
	if !n.Connected("n1", "n2") {
		t.Fatal("recover did not reconnect")
	}
}

func TestSelfConnectivity(t *testing.T) {
	n := newThreeNodeNet(t)
	if !n.Connected("n1", "n1") {
		t.Fatal("node not connected to itself")
	}
	n.Partition([]NodeID{"n1"}, []NodeID{"n2", "n3"})
	if !n.Connected("n1", "n1") {
		t.Fatal("partitioned node not connected to itself")
	}
}

func TestWatchersAndEpoch(t *testing.T) {
	n := NewNetwork()
	var mu sync.Mutex
	calls := 0
	n.Watch(func(int64) {
		mu.Lock()
		calls++
		mu.Unlock()
	})
	e0 := n.Epoch()
	if err := n.Join("n1"); err != nil {
		t.Fatal(err)
	}
	if err := n.Join("n2"); err != nil {
		t.Fatal(err)
	}
	n.Partition([]NodeID{"n1"})
	n.Heal()
	n.Crash("n1")
	n.Recover("n1")
	mu.Lock()
	got := calls
	mu.Unlock()
	if got != 6 {
		t.Fatalf("watcher calls = %d, want 6", got)
	}
	if n.Epoch() != e0+6 {
		t.Fatalf("epoch = %d, want %d", n.Epoch(), e0+6)
	}
}

func TestWatcherMayQueryNetwork(t *testing.T) {
	n := NewNetwork()
	var reach []NodeID
	n.Watch(func(int64) { reach = n.ReachableFrom("n1") })
	if err := n.Join("n1"); err != nil {
		t.Fatal(err)
	}
	if err := n.Join("n2"); err != nil {
		t.Fatal(err)
	}
	if len(reach) != 2 {
		t.Fatalf("watcher saw reach = %v", reach)
	}
}

// TestWatcherEpochOrder drives overlapping topology changes from many
// goroutines and asserts that every watcher observes strictly increasing
// epochs: stale notifications must be suppressed, not delivered late.
func TestWatcherEpochOrder(t *testing.T) {
	n := NewNetwork()
	for _, id := range []NodeID{"n1", "n2", "n3", "n4"} {
		if err := n.Join(id); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	var seen []int64
	n.Watch(func(epoch int64) {
		mu.Lock()
		seen = append(seen, epoch)
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch w % 4 {
				case 0:
					n.Partition([]NodeID{"n1"}, []NodeID{"n2", "n3", "n4"})
				case 1:
					n.Heal()
				case 2:
					n.Crash("n3")
				default:
					n.Recover("n3")
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("no notifications delivered")
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("epochs out of order at %d: %d after %d", i, seen[i], seen[i-1])
		}
	}
}

func TestCostModelCharges(t *testing.T) {
	n := NewNetwork(WithCost(CostModel{PerMessage: 200 * time.Microsecond}))
	if err := n.Join("a"); err != nil {
		t.Fatal(err)
	}
	if err := n.Join("b"); err != nil {
		t.Fatal(err)
	}
	if err := n.Handle("b", "ping", func(NodeID, any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const sends = 20
	for i := 0; i < sends; i++ {
		if _, err := n.Send(context.Background(), "a", "b", "ping", nil); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < sends*150*time.Microsecond {
		t.Fatalf("cost model not charged: %v for %d sends", elapsed, sends)
	}
}

func TestSendCancelledContext(t *testing.T) {
	n := newThreeNodeNet(t)
	var delivered atomic.Int64
	if err := n.Handle("n2", "k", func(NodeID, any) (any, error) {
		delivered.Add(1)
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := n.Send(ctx, "n1", "n2", "k", nil)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("cancelled send err = %v, want ErrUnreachable", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled send err = %v, want context.Canceled in chain", err)
	}
	if delivered.Load() != 0 {
		t.Fatal("cancelled send was delivered")
	}
	if n.Stats().Failures != 1 {
		t.Fatalf("failures = %d, want 1", n.Stats().Failures)
	}
}

func TestSendDeadlineExpiresDuringHop(t *testing.T) {
	n := NewNetwork(WithCost(CostModel{PerMessage: 30 * time.Millisecond}))
	for _, id := range []NodeID{"a", "b"} {
		if err := n.Join(id); err != nil {
			t.Fatal(err)
		}
	}
	var delivered atomic.Int64
	if err := n.Handle("b", "k", func(NodeID, any) (any, error) {
		delivered.Add(1)
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := n.Send(ctx, "a", "b", "k", nil)
	if !errors.Is(err, ErrUnreachable) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired send err = %v", err)
	}
	if delivered.Load() != 0 {
		t.Fatal("message delivered past its deadline")
	}
}

// TestRetryMasksTransientDrop arms a one-shot drop and verifies that the
// retry policy re-sends and the message gets through.
func TestRetryMasksTransientDrop(t *testing.T) {
	n := NewNetwork(WithRetry(RetryPolicy{Attempts: 3}))
	for _, id := range []NodeID{"a", "b"} {
		if err := n.Join(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Handle("b", "k", func(NodeID, any) (any, error) { return "ok", nil }); err != nil {
		t.Fatal(err)
	}
	var dropped atomic.Bool
	n.SetDrop(func(from, to NodeID, kind string) bool {
		return dropped.CompareAndSwap(false, true) // lose exactly the first message
	})
	resp, err := n.Send(context.Background(), "a", "b", "k", nil)
	if err != nil {
		t.Fatalf("retried send failed: %v", err)
	}
	if resp != "ok" {
		t.Fatalf("resp = %v", resp)
	}
	st := n.Stats()
	if st.Retries != 1 || st.Dropped != 1 || st.Messages != 1 {
		t.Fatalf("stats = %+v, want 1 retry, 1 drop, 1 message", st)
	}
}

// TestRetryStopsOnCancelledContext verifies that retries never outlive the
// caller's context.
func TestRetryStopsOnCancelledContext(t *testing.T) {
	n := NewNetwork(WithRetry(RetryPolicy{Attempts: 5}))
	for _, id := range []NodeID{"a", "b"} {
		if err := n.Join(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Handle("b", "k", func(NodeID, any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	n.SetDrop(func(from, to NodeID, kind string) bool {
		if calls.Add(1) == 1 {
			cancel() // drop the first attempt and cancel the caller
		}
		return true
	})
	_, err := n.Send(ctx, "a", "b", "k", nil)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("attempts after cancel = %d, want 1", got)
	}
}

func TestRetryDoesNotMaskPersistentPartition(t *testing.T) {
	n := NewNetwork(WithRetry(RetryPolicy{Attempts: 3}))
	for _, id := range []NodeID{"a", "b"} {
		if err := n.Join(id); err != nil {
			t.Fatal(err)
		}
	}
	n.Partition([]NodeID{"a"}, []NodeID{"b"})
	if _, err := n.Send(context.Background(), "a", "b", "k", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if st := n.Stats(); st.Retries != 2 || st.Failures != 3 {
		t.Fatalf("stats = %+v, want 2 retries / 3 failures", st)
	}
}

// TestResetStatsZeroesDropped is the regression test for the ResetStats bug:
// it previously reset messages and failures but left the dropped counter.
func TestResetStatsZeroesDropped(t *testing.T) {
	n := newThreeNodeNet(t)
	if err := n.Handle("n2", "k", func(NodeID, any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	n.SetDrop(func(from, to NodeID, kind string) bool { return true })
	if _, err := n.Send(context.Background(), "n1", "n2", "k", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dropped send err = %v", err)
	}
	if n.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", n.Stats().Dropped)
	}
	n.ResetStats()
	if s := n.Stats(); s != (Stats{}) {
		t.Fatalf("stats after reset = %+v, want all zero", s)
	}
}

func TestResetStats(t *testing.T) {
	n := newThreeNodeNet(t)
	if err := n.Handle("n2", "k", func(NodeID, any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Send(context.Background(), "n1", "n2", "k", nil); err != nil {
		t.Fatal(err)
	}
	n.ResetStats()
	if s := n.Stats(); s.Messages != 0 || s.Failures != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
}

func TestConcurrentSends(t *testing.T) {
	n := newThreeNodeNet(t)
	if err := n.Handle("n2", "k", func(NodeID, any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, _ = n.Send(context.Background(), "n1", "n2", "k", i)
			}
		}()
	}
	// Concurrent topology churn must not race with sends.
	for i := 0; i < 20; i++ {
		n.Partition([]NodeID{"n1"}, []NodeID{"n2", "n3"})
		n.Heal()
	}
	wg.Wait()
}

func TestReachableMatchesReachableFrom(t *testing.T) {
	n := newThreeNodeNet(t)
	n.Partition([]NodeID{"n1", "n2"}, []NodeID{"n3"})
	n.Crash("n2")
	for _, from := range n.Nodes() {
		in := make(map[NodeID]bool)
		for _, id := range n.ReachableFrom(from) {
			in[id] = true
		}
		for _, to := range n.Nodes() {
			if got := n.Reachable(from, to); got != in[to] {
				t.Fatalf("Reachable(%s,%s) = %t, ReachableFrom says %t", from, to, got, in[to])
			}
		}
	}
}

// The failure detector asks about one peer per heartbeat; Reachable avoids
// materialising the full reachable set the way ReachableFrom does.
func BenchmarkReachable(b *testing.B) {
	n := newBenchNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Reachable("n1", "n16")
	}
}

func BenchmarkReachableFromSingle(b *testing.B) {
	n := newBenchNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range n.ReachableFrom("n1") {
			if id == "n16" {
				break
			}
		}
	}
}

func newBenchNet(b *testing.B) *Network {
	b.Helper()
	n := NewNetwork()
	for i := 1; i <= 16; i++ {
		if err := n.Join(NodeID(fmt.Sprintf("n%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	return n
}

// TestLatencyFuncChargesPerLink injects asymmetric per-link latency and
// asserts only the configured link pays it.
func TestLatencyFuncChargesPerLink(t *testing.T) {
	n := newThreeNodeNet(t)
	for _, id := range []NodeID{"n2", "n3"} {
		if err := n.Handle(id, "ping", func(NodeID, any) (any, error) { return nil, nil }); err != nil {
			t.Fatal(err)
		}
	}
	n.SetLatency(func(from, to NodeID, kind string) time.Duration {
		if to == "n2" {
			return 5 * time.Millisecond
		}
		return 0
	})
	start := time.Now()
	if _, err := n.Send(context.Background(), "n1", "n3", "ping", nil); err != nil {
		t.Fatal(err)
	}
	fast := time.Since(start)
	start = time.Now()
	if _, err := n.Send(context.Background(), "n1", "n2", "ping", nil); err != nil {
		t.Fatal(err)
	}
	slow := time.Since(start)
	if slow < 4*time.Millisecond {
		t.Fatalf("latency not charged on slow link: %v", slow)
	}
	if fast > 2*time.Millisecond {
		t.Fatalf("latency leaked onto unconfigured link: %v", fast)
	}
	// Clearing the injector restores the base cost model.
	n.SetLatency(nil)
	start = time.Now()
	if _, err := n.Send(context.Background(), "n1", "n2", "ping", nil); err != nil {
		t.Fatal(err)
	}
	if cleared := time.Since(start); cleared > 2*time.Millisecond {
		t.Fatalf("latency still charged after SetLatency(nil): %v", cleared)
	}
}

// TestLatencyChargeAbortsOnCancel cancels a send stuck paying injected
// latency and asserts it aborts without delivering.
func TestLatencyChargeAbortsOnCancel(t *testing.T) {
	n := newThreeNodeNet(t)
	var delivered atomic.Int64
	if err := n.Handle("n2", "ping", func(NodeID, any) (any, error) {
		delivered.Add(1)
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	n.SetLatency(func(NodeID, NodeID, string) time.Duration { return time.Minute })
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := n.Send(ctx, "n1", "n2", "ping", nil)
		errCh <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) || !errors.Is(err, ErrUnreachable) {
			t.Fatalf("err = %v, want unreachable+canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("send did not abort when its latency charge was cancelled")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("send blocked for the full injected latency: %v", elapsed)
	}
	if delivered.Load() != 0 {
		t.Fatal("cancelled send was still delivered")
	}
}

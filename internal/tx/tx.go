// Package tx provides the transaction substrate of the middleware
// (the TxMgr of Figure 4.1): transactions with a two-phase commit over
// enlisted resources, per-object locks for concurrency consistency
// (isolation), an undo log for rollback, and the rollback-only flag used by
// the constraint consistency manager to veto commits (§4.2.3).
package tx

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dedisys/internal/object"
	"dedisys/internal/obs"
)

// Errors of the transaction layer.
var (
	// ErrRollbackOnly reports a commit attempt on a transaction marked
	// rollback-only; the transaction is rolled back instead.
	ErrRollbackOnly = errors.New("tx: transaction marked rollback-only")
	// ErrNotActive reports an operation on a completed transaction.
	ErrNotActive = errors.New("tx: transaction not active")
	// ErrLockTimeout reports that an object lock could not be acquired.
	ErrLockTimeout = errors.New("tx: lock acquisition timed out")
	// ErrPrepareFailed wraps a resource's prepare error.
	ErrPrepareFailed = errors.New("tx: prepare failed")
)

// Status is the lifecycle state of a transaction.
type Status int

// Transaction statuses.
const (
	Active Status = iota + 1
	Committed
	RolledBack
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case RolledBack:
		return "rolled-back"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Resource is a transactional participant in the two-phase commit, e.g. the
// constraint consistency manager or a replication protocol.
type Resource interface {
	// Prepare votes on the outcome. Any error aborts the transaction.
	Prepare(t *Tx) error
	// Commit finalises; called only after all participants prepared.
	Commit(t *Tx) error
	// Rollback undoes resource-side effects of the transaction.
	Rollback(t *Tx) error
}

// Manager creates transactions and owns the lock table. One Manager exists
// per node.
type Manager struct {
	seq         atomic.Int64
	lockTimeout time.Duration
	obs         *obs.Observer

	mu        sync.Mutex
	resources []Resource

	locks *lockTable

	begun        *obs.Counter
	committed    *obs.Counter
	rolledBack   *obs.Counter
	lockTimeouts *obs.Counter
	lockWait     *obs.Histogram
}

// Option configures a Manager.
type Option func(*Manager)

// WithLockTimeout overrides the default object-lock acquisition timeout.
func WithLockTimeout(d time.Duration) Option {
	return func(m *Manager) { m.lockTimeout = d }
}

// WithObserver attaches the manager to a shared observability scope; without
// it the manager observes into a private registry.
func WithObserver(o *obs.Observer) Option {
	return func(m *Manager) { m.obs = o }
}

// NewManager creates a transaction manager.
func NewManager(opts ...Option) *Manager {
	m := &Manager{
		lockTimeout: 2 * time.Second,
		locks:       newLockTable(),
	}
	for _, o := range opts {
		o(m)
	}
	if m.obs == nil {
		m.obs = obs.New()
	}
	m.begun = m.obs.Counter("tx.begun")
	m.committed = m.obs.Counter("tx.committed")
	m.rolledBack = m.obs.Counter("tx.rolled_back")
	m.lockTimeouts = m.obs.Counter("tx.lock.timeouts")
	m.lockWait = m.obs.Histogram("tx.lock.wait")
	return m
}

// RegisterResource enlists a resource in every future transaction.
// Registration copies the snapshot (copy-on-write): transactions share the
// published slice without copying it per Begin.
func (m *Manager) RegisterResource(r Resource) {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := make([]Resource, len(m.resources)+1)
	copy(next, m.resources)
	next[len(next)-1] = r
	m.resources = next
}

// Begin starts a transaction with a background context.
func (m *Manager) Begin() *Tx { return m.BeginCtx(context.Background()) }

// BeginCtx starts a transaction bound to the given context: lock waits and
// commit-time propagation are cancelled when the context is. The context
// does not abort the transaction by itself — the caller still drives
// Commit/Rollback — but every blocking operation inside the transaction
// observes it.
func (m *Manager) BeginCtx(ctx context.Context) *Tx {
	if ctx == nil {
		ctx = context.Background()
	}
	m.mu.Lock()
	// The registered-resource snapshot is immutable (RegisterResource
	// replaces it wholesale) and sized exactly, so transactions alias it:
	// Enlist's first append reallocates instead of mutating the shared slice.
	global := m.resources
	m.mu.Unlock()
	m.begun.Inc()
	return &Tx{
		id:        m.seq.Add(1),
		mgr:       m,
		ctx:       ctx,
		status:    Active,
		resources: global,
	}
}

// Tx is one transaction. A Tx must be driven by a single goroutine; the
// lock table protects cross-transaction concurrency.
type Tx struct {
	id  int64
	mgr *Manager
	ctx context.Context

	status       Status
	rollbackOnly bool
	rbReason     error

	resources []Resource
	vals      map[string]any // lazy: most transactions store no values

	// Most transactions lock exactly one object (a single-target
	// invocation), so the first held lock lives inline and the overflow map
	// is allocated only for multi-object transactions.
	held0    object.ID
	hasHeld0 bool
	held     map[object.ID]struct{} // locks beyond the first
	undo     []undoRecord
}

// undoRecord is one rollback action. Typed fields instead of a captured
// closure: recording an update on the write hot path stores a value in the
// undo slice without allocating a closure per mutation.
type undoRecord struct {
	entity  *object.Entity // restore target (undo of an update)
	state   object.State   // pre-state for restore
	version int64          // pre-version for restore
	reg     *object.Registry
	id      object.ID // remove target (undo of a create)
	fn      func()    // arbitrary compensation; wins when set
}

func (u *undoRecord) apply() {
	switch {
	case u.fn != nil:
		u.fn()
	case u.entity != nil && u.reg != nil:
		_ = u.reg.Add(u.entity) // undo of a delete
	case u.entity != nil:
		u.entity.Restore(u.state, u.version)
	case u.reg != nil:
		_ = u.reg.Remove(u.id) // undo of a create
	}
}

// ID returns the transaction identifier (unique per manager).
func (t *Tx) ID() int64 { return t.id }

// Context returns the context the transaction was begun with (never nil).
// Middleware resources use it to bound commit-time propagation.
func (t *Tx) Context() context.Context {
	if t.ctx == nil {
		return context.Background()
	}
	return t.ctx
}

// Status returns the transaction status.
func (t *Tx) Status() Status { return t.status }

// Put stores a transaction-scoped value, e.g. the registered negotiation
// handler of §3.2.1.
func (t *Tx) Put(key string, v any) {
	if t.vals == nil {
		t.vals = make(map[string]any)
	}
	t.vals[key] = v
}

// Value retrieves a transaction-scoped value.
func (t *Tx) Value(key string) any { return t.vals[key] }

// Enlist adds a per-transaction resource participant.
func (t *Tx) Enlist(r Resource) { t.resources = append(t.resources, r) }

// SetRollbackOnly marks the transaction so it can no longer commit. The
// first reason is retained and returned from Commit.
func (t *Tx) SetRollbackOnly(reason error) {
	if !t.rollbackOnly {
		t.rollbackOnly = true
		t.rbReason = reason
	}
}

// RollbackOnly reports whether the transaction has been vetoed.
func (t *Tx) RollbackOnly() bool { return t.rollbackOnly }

// Lock acquires the exclusive lock on an object for this transaction.
// Locks are reentrant per transaction and released at completion.
func (t *Tx) Lock(id object.ID) error {
	if t.status != Active {
		return fmt.Errorf("%w: %s", ErrNotActive, t.status)
	}
	if t.HoldsLock(id) {
		return nil
	}
	m := t.mgr
	var err error
	if m.obs.Tracing() {
		// Wait-time measurement only when tracing: the common path pays no
		// clock reads beyond what acquire itself needs.
		start := time.Now()
		err = m.locks.acquire(t.Context(), id, t.id, m.lockTimeout)
		m.lockWait.Observe(time.Since(start))
	} else {
		err = m.locks.acquire(t.Context(), id, t.id, m.lockTimeout)
	}
	if err != nil {
		m.lockTimeouts.Inc()
		if m.obs.Tracing() {
			m.obs.Emit(obs.EventLockTimeout, fmt.Sprintf("tx %d: %v", t.id, err))
		}
		return err
	}
	if !t.hasHeld0 {
		t.hasHeld0, t.held0 = true, id
	} else {
		if t.held == nil {
			t.held = make(map[object.ID]struct{})
		}
		t.held[id] = struct{}{}
	}
	return nil
}

// HoldsLock reports whether this transaction owns the object's lock.
func (t *Tx) HoldsLock(id object.ID) bool {
	if t.hasHeld0 && t.held0 == id {
		return true
	}
	_, ok := t.held[id]
	return ok
}

// RecordUpdate saves the entity's pre-state for rollback. Call before the
// first mutation of the entity within this transaction; later calls for the
// same entity are cheap no-ops handled by the caller keeping first-write
// semantics (the undo log replays in reverse, so duplicates are harmless but
// wasteful).
func (t *Tx) RecordUpdate(e *object.Entity) {
	t.undo = append(t.undo, undoRecord{entity: e, state: e.Snapshot(), version: e.Version()})
}

// RecordCreate registers an undo that removes a created entity again.
func (t *Tx) RecordCreate(reg *object.Registry, id object.ID) {
	t.undo = append(t.undo, undoRecord{reg: reg, id: id})
}

// RecordDelete registers an undo that re-adds a deleted entity.
func (t *Tx) RecordDelete(reg *object.Registry, e *object.Entity) {
	t.undo = append(t.undo, undoRecord{reg: reg, entity: e})
}

// RecordUndo registers an arbitrary compensation to run on rollback.
func (t *Tx) RecordUndo(fn func()) {
	t.undo = append(t.undo, undoRecord{fn: fn})
}

// Commit runs the two-phase commit: prepare all resources, then commit them.
// A prepare failure or the rollback-only flag triggers rollback and returns
// the causing error.
func (t *Tx) Commit() error {
	if t.status != Active {
		return fmt.Errorf("%w: %s", ErrNotActive, t.status)
	}
	if t.rollbackOnly {
		t.rollback()
		if t.rbReason != nil {
			return fmt.Errorf("%w: %w", ErrRollbackOnly, t.rbReason)
		}
		return ErrRollbackOnly
	}
	for _, r := range t.resources {
		if err := r.Prepare(t); err != nil {
			t.rollback()
			return fmt.Errorf("%w: %w", ErrPrepareFailed, err)
		}
		// Prepare may discover a veto (e.g. soft constraint violation sets
		// rollback-only instead of erroring).
		if t.rollbackOnly {
			t.rollback()
			if t.rbReason != nil {
				return fmt.Errorf("%w: %w", ErrRollbackOnly, t.rbReason)
			}
			return ErrRollbackOnly
		}
	}
	for _, r := range t.resources {
		if err := r.Commit(t); err != nil {
			// Commit errors after successful prepare indicate a middleware
			// defect; surface them but the transaction is committed.
			t.finish(Committed)
			return fmt.Errorf("tx %d: commit phase: %w", t.id, err)
		}
	}
	t.finish(Committed)
	return nil
}

// Rollback aborts the transaction, undoing recorded mutations in reverse.
func (t *Tx) Rollback() error {
	if t.status != Active {
		return fmt.Errorf("%w: %s", ErrNotActive, t.status)
	}
	t.rollback()
	return nil
}

func (t *Tx) rollback() {
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i].apply()
	}
	for _, r := range t.resources {
		// Resource rollback errors cannot change the outcome; participants
		// must tolerate re-delivery.
		_ = r.Rollback(t)
	}
	t.finish(RolledBack)
}

func (t *Tx) finish(s Status) {
	t.status = s
	switch s {
	case Committed:
		t.mgr.committed.Inc()
	case RolledBack:
		t.mgr.rolledBack.Inc()
	}
	if t.hasHeld0 {
		t.mgr.locks.release(t.held0, t.id)
		t.hasHeld0 = false
	}
	for id := range t.held {
		t.mgr.locks.release(id, t.id)
	}
	t.held = nil
	t.undo = nil
}

// lockTable implements per-object exclusive locks with timeout.
type lockTable struct {
	mu    sync.Mutex
	cond  *sync.Cond
	owner map[object.ID]int64
}

func newLockTable() *lockTable {
	lt := &lockTable{owner: make(map[object.ID]int64)}
	lt.cond = sync.NewCond(&lt.mu)
	return lt
}

func (lt *lockTable) acquire(ctx context.Context, id object.ID, txID int64, timeout time.Duration) error {
	// The wait is bounded by whichever is tighter: the manager's lock
	// timeout or the transaction context's deadline. Cancellation surfaces
	// as ErrLockTimeout with the context error in the wrap chain.
	deadline := time.Now().Add(timeout)
	ctxBound := false
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
		ctxBound = true
	}
	lt.mu.Lock()
	defer lt.mu.Unlock()
	for {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("%w: object %s: %w", ErrLockTimeout, id, cerr)
		}
		owner, locked := lt.owner[id]
		if !locked {
			lt.owner[id] = txID
			return nil
		}
		if owner == txID {
			return nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("%w: object %s: %w", ErrLockTimeout, id, cerr)
			}
			if ctxBound {
				// The context deadline was the binding bound; its timer may
				// lag our clock check by a few microseconds.
				return fmt.Errorf("%w: object %s: %w", ErrLockTimeout, id, context.DeadlineExceeded)
			}
			return fmt.Errorf("%w: object %s held by tx %d", ErrLockTimeout, id, owner)
		}
		// Wake periodically to re-check the deadline; broadcast on release
		// normally wakes us first. Never wait past the deadline: a timeout
		// shorter than one tick must still expire on time.
		wait := 10 * time.Millisecond
		if remaining < wait {
			wait = remaining
		}
		waitWithTimeout(lt.cond, wait)
	}
}

func (lt *lockTable) release(id object.ID, txID int64) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.owner[id] == txID {
		delete(lt.owner, id)
		lt.cond.Broadcast()
	}
}

// waitWithTimeout waits on cond for at most d. The caller must hold the
// cond's lock; the lock is held again on return.
func waitWithTimeout(cond *sync.Cond, d time.Duration) {
	done := make(chan struct{})
	timer := time.AfterFunc(d, func() {
		cond.Broadcast()
		close(done)
	})
	cond.Wait()
	timer.Stop()
}

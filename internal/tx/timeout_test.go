package tx

import (
	"context"
	"errors"
	"testing"
	"time"

	"dedisys/internal/object"
	"dedisys/internal/obs"
)

// Regression test: lockTable.acquire waited in fixed 10 ms ticks, so a lock
// timeout shorter than one tick expired only after the full tick (a 2 ms
// timeout reported failure after ~10 ms). The wait must be bounded by the
// remaining deadline.
func TestLockTimeoutPrecision(t *testing.T) {
	const timeout = 2 * time.Millisecond
	m := NewManager(WithLockTimeout(timeout))
	holder := m.Begin()
	id := object.ID("obj-1")
	if err := holder.Lock(id); err != nil {
		t.Fatal(err)
	}

	waiter := m.Begin()
	start := time.Now()
	err := waiter.Lock(id)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("Lock = %v, want ErrLockTimeout", err)
	}
	if elapsed < timeout {
		t.Fatalf("timeout fired after %v, before the %v deadline", elapsed, timeout)
	}
	// Pre-fix the waiter slept a full 10 ms tick; post-fix it wakes at the
	// deadline. Allow generous scheduler slack while staying below a tick.
	if elapsed >= 9*time.Millisecond {
		t.Fatalf("timeout fired after %v, overshooting the %v deadline by most of a tick", elapsed, timeout)
	}
	if got := m.obs.Registry().Counter("tx.lock.timeouts").Load(); got != 1 {
		t.Fatalf("tx.lock.timeouts = %d, want 1", got)
	}
}

// A transaction context's deadline bounds the lock wait even when it is
// tighter than the manager's lock timeout, and the context error appears in
// the wrap chain.
func TestLockWaitBoundedByContextDeadline(t *testing.T) {
	m := NewManager(WithLockTimeout(10 * time.Second))
	id := object.ID("obj-ctx")
	holder := m.Begin()
	if err := holder.Lock(id); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	waiter := m.BeginCtx(ctx)
	start := time.Now()
	err := waiter.Lock(id)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("Lock = %v, want ErrLockTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Lock = %v, want context.DeadlineExceeded in chain", err)
	}
	if elapsed > time.Second {
		t.Fatalf("ctx-bounded wait took %v", elapsed)
	}
}

// Cancelling the transaction context releases a blocked lock waiter promptly.
func TestLockWaitCancelledContext(t *testing.T) {
	m := NewManager(WithLockTimeout(10 * time.Second))
	id := object.ID("obj-cancel")
	holder := m.Begin()
	if err := holder.Lock(id); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	waiter := m.BeginCtx(ctx)
	got := make(chan error, 1)
	go func() { got <- waiter.Lock(id) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, ErrLockTimeout) || !errors.Is(err, context.Canceled) {
			t.Fatalf("Lock = %v, want ErrLockTimeout wrapping context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled waiter not released")
	}
}

// The lock must still be handed over promptly when released before the
// deadline, and the manager's lifecycle counters must track outcomes.
func TestLockHandoverAndLifecycleCounters(t *testing.T) {
	o := obs.New()
	o.Tracer().SetEnabled(true)
	m := NewManager(WithLockTimeout(500*time.Millisecond), WithObserver(o))
	id := object.ID("obj-2")

	holder := m.Begin()
	if err := holder.Lock(id); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	waiter := m.Begin()
	go func() { got <- waiter.Lock(id) }()
	time.Sleep(5 * time.Millisecond)
	if err := holder.Rollback(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("waiter.Lock = %v after release", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not woken by lock release")
	}
	if err := waiter.Commit(); err != nil {
		t.Fatal(err)
	}

	reg := o.Registry()
	if got := reg.Counter("tx.begun").Load(); got != 2 {
		t.Fatalf("tx.begun = %d, want 2", got)
	}
	if got := reg.Counter("tx.committed").Load(); got != 1 {
		t.Fatalf("tx.committed = %d, want 1", got)
	}
	if got := reg.Counter("tx.rolled_back").Load(); got != 1 {
		t.Fatalf("tx.rolled_back = %d, want 1", got)
	}
	if got := reg.Counter("tx.lock.timeouts").Load(); got != 0 {
		t.Fatalf("tx.lock.timeouts = %d, want 0", got)
	}
	if reg.Histogram("tx.lock.wait").Count() < 2 {
		t.Fatalf("tx.lock.wait count = %d, want >= 2", reg.Histogram("tx.lock.wait").Count())
	}
}

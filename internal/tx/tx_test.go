package tx

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dedisys/internal/object"
)

type fakeResource struct {
	prepareErr error
	onPrepare  func(t *Tx)

	prepared, committed, rolledBack int
}

func (f *fakeResource) Prepare(t *Tx) error {
	f.prepared++
	if f.onPrepare != nil {
		f.onPrepare(t)
	}
	return f.prepareErr
}
func (f *fakeResource) Commit(t *Tx) error   { f.committed++; return nil }
func (f *fakeResource) Rollback(t *Tx) error { f.rolledBack++; return nil }

var _ Resource = (*fakeResource)(nil)

func TestCommitHappyPath(t *testing.T) {
	m := NewManager()
	r := &fakeResource{}
	m.RegisterResource(r)
	txn := m.Begin()
	if txn.Status() != Active {
		t.Fatalf("status = %v", txn.Status())
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if txn.Status() != Committed {
		t.Fatalf("status = %v", txn.Status())
	}
	if r.prepared != 1 || r.committed != 1 || r.rolledBack != 0 {
		t.Fatalf("resource calls = %+v", r)
	}
	if err := txn.Commit(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("double commit err = %v", err)
	}
}

func TestPrepareFailureRollsBack(t *testing.T) {
	m := NewManager()
	boom := errors.New("boom")
	r1 := &fakeResource{}
	r2 := &fakeResource{prepareErr: boom}
	m.RegisterResource(r1)
	m.RegisterResource(r2)
	txn := m.Begin()
	err := txn.Commit()
	if !errors.Is(err, ErrPrepareFailed) || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if txn.Status() != RolledBack {
		t.Fatalf("status = %v", txn.Status())
	}
	if r1.rolledBack != 1 || r2.rolledBack != 1 || r1.committed != 0 {
		t.Fatalf("resource calls: r1=%+v r2=%+v", r1, r2)
	}
}

func TestRollbackOnly(t *testing.T) {
	m := NewManager()
	r := &fakeResource{}
	m.RegisterResource(r)
	txn := m.Begin()
	cause := errors.New("constraint violated")
	txn.SetRollbackOnly(cause)
	txn.SetRollbackOnly(errors.New("second reason ignored"))
	if !txn.RollbackOnly() {
		t.Fatal("RollbackOnly false")
	}
	err := txn.Commit()
	if !errors.Is(err, ErrRollbackOnly) || !errors.Is(err, cause) {
		t.Fatalf("err = %v", err)
	}
	if r.prepared != 0 || r.rolledBack != 1 {
		t.Fatalf("resource calls = %+v", r)
	}
}

func TestVetoDuringPrepare(t *testing.T) {
	m := NewManager()
	cause := errors.New("soft constraint violated")
	veto := &fakeResource{onPrepare: func(tx *Tx) { tx.SetRollbackOnly(cause) }}
	after := &fakeResource{}
	m.RegisterResource(veto)
	m.RegisterResource(after)
	txn := m.Begin()
	err := txn.Commit()
	if !errors.Is(err, ErrRollbackOnly) || !errors.Is(err, cause) {
		t.Fatalf("err = %v", err)
	}
	if after.prepared != 0 {
		t.Fatal("prepare continued past veto")
	}
	if txn.Status() != RolledBack {
		t.Fatalf("status = %v", txn.Status())
	}
}

func TestUndoLogRestoresState(t *testing.T) {
	m := NewManager()
	reg := object.NewRegistry()
	e := object.New("Flight", "f1", object.State{"sold": int64(70)})
	if err := reg.Add(e); err != nil {
		t.Fatal(err)
	}

	txn := m.Begin()
	txn.RecordUpdate(e)
	e.Set("sold", int64(77))
	created := object.New("Flight", "f2", nil)
	if err := reg.Add(created); err != nil {
		t.Fatal(err)
	}
	txn.RecordCreate(reg, "f2")
	if err := reg.Remove("f1"); err == nil {
		txn.RecordDelete(reg, e)
	}
	compensated := false
	txn.RecordUndo(func() { compensated = true })

	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if e.GetInt("sold") != 70 || e.Version() != 1 {
		t.Fatalf("update not undone: sold=%d v=%d", e.GetInt("sold"), e.Version())
	}
	if reg.Has("f2") {
		t.Fatal("create not undone")
	}
	if !reg.Has("f1") {
		t.Fatal("delete not undone")
	}
	if !compensated {
		t.Fatal("custom undo not run")
	}
	if err := txn.Rollback(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("double rollback err = %v", err)
	}
}

func TestCommitKeepsMutations(t *testing.T) {
	m := NewManager()
	e := object.New("Flight", "f1", object.State{"sold": int64(70)})
	txn := m.Begin()
	txn.RecordUpdate(e)
	e.Set("sold", int64(75))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if e.GetInt("sold") != 75 {
		t.Fatalf("commit undid mutation: %d", e.GetInt("sold"))
	}
}

func TestLockingReentrantAndExclusive(t *testing.T) {
	m := NewManager(WithLockTimeout(50 * time.Millisecond))
	t1 := m.Begin()
	t2 := m.Begin()
	if err := t1.Lock("o1"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Lock("o1"); err != nil {
		t.Fatalf("reentrant lock failed: %v", err)
	}
	if !t1.HoldsLock("o1") || t2.HoldsLock("o1") {
		t.Fatal("HoldsLock wrong")
	}
	if err := t2.Lock("o1"); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("conflicting lock err = %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Lock("o1"); err != nil {
		t.Fatalf("lock after release failed: %v", err)
	}
	if err := t2.Rollback(); err != nil {
		t.Fatal(err)
	}
}

func TestLockBlocksUntilRelease(t *testing.T) {
	m := NewManager(WithLockTimeout(2 * time.Second))
	t1 := m.Begin()
	if err := t1.Lock("o1"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	acquired := make(chan error, 1)
	go func() {
		defer wg.Done()
		t2 := m.Begin()
		acquired <- t2.Lock("o1")
		_ = t2.Rollback()
	}()
	time.Sleep(20 * time.Millisecond)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-acquired; err != nil {
		t.Fatalf("waiter failed: %v", err)
	}
	wg.Wait()
}

func TestLockOnCompletedTx(t *testing.T) {
	m := NewManager()
	txn := m.Begin()
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := txn.Lock("o1"); !errors.Is(err, ErrNotActive) {
		t.Fatalf("lock on committed tx err = %v", err)
	}
}

func TestTxScopedValues(t *testing.T) {
	m := NewManager()
	txn := m.Begin()
	if got := txn.Value("nh"); got != nil {
		t.Fatalf("unset value = %v", got)
	}
	txn.Put("nh", 42)
	if got := txn.Value("nh"); got != 42 {
		t.Fatalf("value = %v", got)
	}
}

func TestEnlistPerTxResource(t *testing.T) {
	m := NewManager()
	r := &fakeResource{}
	txn := m.Begin()
	txn.Enlist(r)
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if r.prepared != 1 || r.committed != 1 {
		t.Fatalf("enlisted resource calls = %+v", r)
	}
	// A second transaction must not see the per-tx resource.
	txn2 := m.Begin()
	if err := txn2.Commit(); err != nil {
		t.Fatal(err)
	}
	if r.prepared != 1 {
		t.Fatal("per-tx resource leaked into next tx")
	}
}

func TestTxIDsUnique(t *testing.T) {
	m := NewManager()
	seen := make(map[int64]bool)
	for i := 0; i < 100; i++ {
		txn := m.Begin()
		if seen[txn.ID()] {
			t.Fatalf("duplicate tx id %d", txn.ID())
		}
		seen[txn.ID()] = true
		_ = txn.Rollback()
	}
}

func TestConcurrentTransactionsOnDistinctObjects(t *testing.T) {
	m := NewManager()
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				txn := m.Begin()
				id := object.ID(rune('a' + w%8))
				if err := txn.Lock(id); err != nil {
					errs <- err
					_ = txn.Rollback()
					return
				}
				if err := txn.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

module dedisys

go 1.22

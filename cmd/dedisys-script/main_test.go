package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDemo(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-demo"}, nil, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "replicas converged") {
		t.Fatalf("output = %s", out.String())
	}
}

func TestRunStdin(t *testing.T) {
	var out bytes.Buffer
	src := strings.NewReader("cluster 1\ncreate n1 b1 v=1\nexpect n1 b1 v 1\n")
	if err := run([]string{"-"}, src, &out); err != nil {
		t.Fatal(err)
	}
}

func TestRunFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.dsc")
	if err := os.WriteFile(path, []byte("cluster 1\necho hello\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hello") {
		t.Fatalf("output = %s", out.String())
	}
}

func TestRunUsageAndMissingFile(t *testing.T) {
	if err := run(nil, nil, &bytes.Buffer{}); err == nil {
		t.Fatal("no-args accepted")
	}
	if err := run([]string{"/no/such/file.dsc"}, nil, &bytes.Buffer{}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"-bogus-flag"}, nil, &bytes.Buffer{}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestExampleScenarios(t *testing.T) {
	matches, err := filepath.Glob("../../examples/scenarios/*.dsc")
	if err != nil || len(matches) == 0 {
		t.Fatalf("no scenario files found: %v", err)
	}
	for _, path := range matches {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			var out bytes.Buffer
			if err := run([]string{path}, nil, &out); err != nil {
				t.Fatalf("%v\n%s", err, out.String())
			}
			if !strings.Contains(out.String(), "complete") {
				t.Fatalf("output = %s", out.String())
			}
		})
	}
}

// Command dedisys-script runs DedisysTest-style scenario scripts (§5.1)
// against an in-process DeDiSys cluster: build nodes, deploy declarative
// constraints, run business operations, inject partitions and crashes,
// reconcile, and assert on the outcome.
//
// Usage:
//
//	dedisys-script scenario.dsc        # run a script file
//	dedisys-script -                   # read the script from stdin
//	dedisys-script -demo               # run the built-in §1.3 demo scenario
//
// See internal/script for the command reference.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dedisys/internal/detect"
	"dedisys/internal/obs"
	"dedisys/internal/replication"
	"dedisys/internal/script"
)

// demoScenario is the §1.3 flight booking story.
const demoScenario = `
echo == flight booking scenario (dissertation section 1.3) ==
constraint Ticket HARD RELAXABLE UNCHECKABLE sold <= seats
cluster 2
create n1 f1 seats=80 sold=70
echo healthy: selling within capacity works, overbooking is rejected
set n1 f1 sold 75
fail set n1 f1 sold 81
echo injecting a network partition; both sides keep selling under threats
partition n1 | n2
set n1 f1 sold 77
set n2 f1 sold 78
threats n1 1
echo healing and reconciling
heal
reconcile n1
threats n1 0
echo done: replicas converged, threats resolved
`

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dedisys-script:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("dedisys-script", flag.ContinueOnError)
	demo := fs.Bool("demo", false, "run the built-in flight booking scenario")
	metrics := fs.Bool("metrics", false, "dump the metrics registry after the run")
	trace := fs.Bool("trace", false, "record structured events and dump the trace after the run")
	detector := fs.String("detector", "", "drive membership from heartbeat failure detection: fixed or phi")
	hbInterval := fs.Duration("heartbeat-interval", 0, "failure detector heartbeat period (default 10ms)")
	suspectTimeout := fs.Duration("suspect-timeout", 0, "silence tolerance before suspecting a peer (default 5 intervals)")
	batchProp := fs.Bool("batch-propagation", true, "batch commit propagation into one multicast round per transaction (false: one round per object)")
	protocol := fs.String("protocol", "", "default replica-control protocol for 'cluster' commands: P4, primary-backup, primary-partition, adaptive-voting or quorum")
	quorumThreshold := fs.Int("quorum-threshold", 0, "acks (incl. the coordinator) a quorum commit waits for; 0 = strict majority (requires -protocol=quorum)")
	groups := fs.Int("groups", 0, "shard the object space across this many replica groups (0 = full replication)")
	rf := fs.Int("replication-factor", 0, "nodes replicating each group; 0 = all nodes (requires -groups)")
	gossipInterval := fs.Duration("gossip-interval", 0, "run the anti-entropy gossip loop on 'cluster' nodes with this period (0 = off)")
	gossipFanout := fs.Int("gossip-fanout", 0, "peers contacted per gossip round (default 2; requires -gossip-interval)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rf != 0 && *groups == 0 {
		return fmt.Errorf("-replication-factor requires -groups")
	}
	if *gossipFanout != 0 && *gossipInterval == 0 {
		return fmt.Errorf("-gossip-fanout requires -gossip-interval")
	}
	var proto replication.Protocol
	if *protocol != "" || *quorumThreshold != 0 {
		if *quorumThreshold != 0 && *protocol != "quorum" && *protocol != "q" {
			return fmt.Errorf("-quorum-threshold requires -protocol=quorum")
		}
		p, err := replication.ProtocolByName(*protocol, *quorumThreshold)
		if err != nil {
			return err
		}
		proto = p
	}
	detectCfg, err := detectConfig(*detector, *hbInterval, *suspectTimeout)
	if err != nil {
		return err
	}
	var src io.Reader
	switch {
	case *demo:
		src = strings.NewReader(demoScenario)
	case fs.NArg() == 1 && fs.Arg(0) == "-":
		src = stdin
	case fs.NArg() == 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		src = f
	default:
		return fmt.Errorf("usage: dedisys-script [-demo] [-metrics] [-trace] [-detector fixed|phi] <scenario-file|->")
	}
	eng := script.New(stdout)
	eng.Detect = detectCfg
	eng.SequentialPropagation = !*batchProp
	eng.Protocol = proto
	eng.Groups = *groups
	eng.ReplicationFactor = *rf
	eng.GossipInterval = *gossipInterval
	eng.GossipFanout = *gossipFanout
	if *metrics || *trace {
		eng.Obs = obs.New()
		eng.Obs.Tracer().SetEnabled(*trace)
	}
	runErr := eng.Run(src)
	if eng.Obs != nil {
		if *metrics {
			fmt.Fprintln(stdout, "-- metrics --")
			eng.Obs.Snapshot().WriteText(stdout)
		}
		if *trace {
			fmt.Fprintf(stdout, "-- trace (%d events) --\n", eng.Obs.Tracer().Len())
			eng.Obs.Tracer().WriteText(stdout)
		}
	}
	return runErr
}

// detectConfig turns the -detector/-heartbeat-interval/-suspect-timeout flags
// into a detector configuration (nil when failure detection is off).
func detectConfig(policy string, interval, timeout time.Duration) (*detect.Config, error) {
	if policy == "" {
		if interval > 0 || timeout > 0 {
			return nil, fmt.Errorf("-heartbeat-interval/-suspect-timeout require -detector")
		}
		return nil, nil
	}
	cfg := &detect.Config{Interval: interval, SuspectTimeout: timeout}
	switch policy {
	case "fixed":
		// default policy
	case "phi":
		cfg.Policy = detect.PhiAccrual{}
	default:
		return nil, fmt.Errorf("unknown detector policy %q (want fixed or phi)", policy)
	}
	return cfg, nil
}

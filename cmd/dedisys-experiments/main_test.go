package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-quick", "fig-nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunSingleExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	if err := run([]string{"-quick", "exp-psc"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFlagOverrides(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	if err := run([]string{"-ops", "30", "-runs", "1", "-netcost", "0s", "-storecost", "0s", "exp-avail"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunCSVOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	dir := t.TempDir()
	if err := run([]string{"-quick", "-csv", dir, "exp-avail"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "exp-avail.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "case,success_fraction") {
		t.Fatalf("csv = %s", data)
	}
}

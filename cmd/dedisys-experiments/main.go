// Command dedisys-experiments regenerates the dissertation's evaluation
// tables and figures (see DESIGN.md for the experiment index).
//
// Usage:
//
//	dedisys-experiments [-quick] [-ops N] [-runs N] [-netcost D] [-storecost D]
//	                    [-load-ops N] [-load-rate R] [-cpuprofile F] [-memprofile F] [id ...]
//
// Without arguments all experiments run at the calibrated default scale; one
// or more experiment IDs (e.g. fig5.2 exp-psc) restrict the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"dedisys/internal/bench"
	"dedisys/internal/obs"
	"dedisys/internal/replication"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dedisys-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dedisys-experiments", flag.ContinueOnError)
	var (
		quick          = fs.Bool("quick", false, "small scale, zero simulated hardware costs")
		list           = fs.Bool("list", false, "list experiment IDs and exit")
		ops            = fs.Int("ops", 0, "operations per measured case (default 1000)")
		runs           = fs.Int("runs", 0, "scenario repetitions for the chapter-2 study (default 20)")
		netCost        = fs.Duration("netcost", -1, "simulated per-message network cost (default 120µs)")
		storeCost      = fs.Duration("storecost", -1, "simulated per-write database cost (default 80µs)")
		hbInterval     = fs.Duration("heartbeat-interval", 0, "exp-detect: failure detector heartbeat period (default 5ms)")
		suspectTimeout = fs.Duration("suspect-timeout", 0, "exp-detect: fixed-timeout silence tolerance (default 5 intervals)")
		batchProp      = fs.Bool("batch-propagation", true, "batch commit propagation into one multicast round per transaction (false: one round per object)")
		protocol       = fs.String("protocol", "", "replica-control protocol for every experiment cluster: P4, primary-backup, primary-partition, adaptive-voting or quorum")
		quorumK        = fs.Int("quorum-threshold", 0, "acks (incl. the coordinator) a quorum commit waits for; 0 = strict majority (requires -protocol=quorum)")
		groups         = fs.Int("groups", 0, "exp-shard: replica-group count for the sharded cases (0 = its defaults, G=2 and G=4)")
		rf             = fs.Int("replication-factor", 0, "exp-shard: nodes replicating each group (0 = its default of 3)")
		gossipFanout   = fs.Int("gossip-fanout", 0, "exp-gossip: peers contacted per anti-entropy round (0 = the gossip default of 2)")
		loadOps        = fs.Int("load-ops", 0, "exp-load: total operations (0 = 1000x -ops, a million at default scale)")
		loadRate       = fs.Float64("load-rate", 0, "exp-load: mean open-loop arrival rate in ops/s (0 = 250000)")
		loadReadRatio  = fs.Float64("load-read-ratio", 0, "exp-load: read fraction of the mix (0 = 0.9)")
		loadPoisson    = fs.Bool("load-poisson", true, "exp-load: Poisson inter-arrivals (false: fixed rate)")
		loadSeed       = fs.Int64("load-seed", 0, "exp-load: schedule seed for replayable runs (0 = 42)")
		loadWorkers    = fs.Int("load-workers", 0, "exp-load: executor pool size (0 = 4x GOMAXPROCS)")

		csvDir     = fs.String("csv", "", "also write each result as CSV into this directory")
		metrics    = fs.Bool("metrics", false, "dump the shared metrics registry after each experiment")
		trace      = fs.Bool("trace", false, "record structured events and dump the trace after each experiment")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile covering the selected experiments to this file")
		memProfile = fs.String("memprofile", "", "write an allocation profile taken after the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return nil
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *ops > 0 {
		cfg.Ops = *ops
		cfg.Entities = *ops
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *netCost >= 0 {
		cfg.NetCost = *netCost
	}
	if *storeCost >= 0 {
		cfg.StoreCost = *storeCost
	}
	if *hbInterval > 0 {
		cfg.HeartbeatInterval = *hbInterval
	}
	if *suspectTimeout > 0 {
		cfg.SuspectTimeout = *suspectTimeout
	}
	cfg.SequentialPropagation = !*batchProp
	if *protocol != "" || *quorumK != 0 {
		if *quorumK != 0 && *protocol != "quorum" && *protocol != "q" {
			return fmt.Errorf("-quorum-threshold requires -protocol=quorum")
		}
		// Validate the name up front so a typo fails before an hour-long run.
		if _, err := replication.ProtocolByName(*protocol, *quorumK); err != nil {
			return err
		}
		cfg.Protocol = *protocol
		cfg.QuorumThreshold = *quorumK
	}
	cfg.Groups = *groups
	cfg.ReplicationFactor = *rf
	cfg.GossipFanout = *gossipFanout
	cfg.LoadOps = *loadOps
	cfg.LoadRate = *loadRate
	cfg.LoadReadRatio = *loadReadRatio
	cfg.LoadFixedRate = !*loadPoisson
	cfg.LoadSeed = *loadSeed
	cfg.LoadWorkers = *loadWorkers
	var observer *obs.Observer
	if *metrics || *trace {
		observer = obs.New()
		observer.Tracer().SetEnabled(*trace)
		cfg.Obs = observer
	}

	selected := bench.Registry()
	if ids := fs.Args(); len(ids) > 0 {
		selected = selected[:0]
		for _, id := range ids {
			e, err := bench.ByID(id)
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeMemProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, "dedisys-experiments:", err)
			}
		}()
	}
	start := time.Now()
	for _, e := range selected {
		res, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		res.Print(os.Stdout)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, res); err != nil {
				return err
			}
		}
		if observer != nil {
			dumpObservability(os.Stdout, e.ID, observer, *metrics, *trace)
			observer.Registry().Reset()
			observer.Tracer().Reset()
		}
	}
	fmt.Printf("%d experiment(s) completed in %s\n", len(selected), time.Since(start).Round(time.Millisecond))
	return nil
}

// dumpObservability prints the registry and/or trace gathered during one
// experiment.
func dumpObservability(w *os.File, id string, o *obs.Observer, metrics, trace bool) {
	if metrics {
		fmt.Fprintf(w, "-- metrics (%s) --\n", id)
		o.Snapshot().WriteText(w)
	}
	if trace {
		fmt.Fprintf(w, "-- trace (%s, %d events) --\n", id, o.Tracer().Len())
		o.Tracer().WriteText(w)
	}
}

// writeMemProfile snapshots the allocation profile after a final GC, so the
// numbers reflect live retention plus cumulative allocation sites.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("mem profile: %w", err)
	}
	return nil
}

// writeCSV stores one result as <dir>/<id>.csv.
func writeCSV(dir string, res *bench.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, res.ID+".csv"))
	if err != nil {
		return err
	}
	res.WriteCSV(f)
	return f.Close()
}

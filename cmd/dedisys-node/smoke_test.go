package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestWireClusterSmoke is the multi-process smoke test of the real-wire
// backend: it builds dedisys-node, launches a 3-process cluster over unix
// sockets, creates an object, commits a quorum write with one node killed,
// and verifies the restarted node converges through reconciliation.
//
// It runs when DEDISYS_WIRE_SMOKE=1 (the CI wire-smoke step sets it); the
// plain test suite stays single-process.
func TestWireClusterSmoke(t *testing.T) {
	if os.Getenv("DEDISYS_WIRE_SMOKE") == "" {
		t.Skip("set DEDISYS_WIRE_SMOKE=1 to run the multi-process smoke test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "dedisys-node")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	peers := fmt.Sprintf("a=unix:%s,b=unix:%s,c=unix:%s",
		filepath.Join(dir, "a.sock"), filepath.Join(dir, "b.sock"), filepath.Join(dir, "c.sock"))

	a := startNode(t, bin, "a", peers)
	b := startNode(t, bin, "b", peers)
	c := startNode(t, bin, "c", peers)
	a.expect(t, "ready")
	b.expect(t, "ready")
	c.expect(t, "ready")

	// Create and write on the healthy cluster; the value must be readable
	// from another process's replica.
	a.send(t, "create acct-1 balance=100")
	a.expect(t, "ok created acct-1")
	// The create itself commits at a majority, so its straggler send can
	// still be in flight when the next write's batch arrives; a replica that
	// has not seen the create skips the update and waits for reconciliation
	// (handleBatch). Wait until every replica has applied the create before
	// writing, so the write below is a pure version-vector catch-up.
	b.expectEventually(t, "get acct-1 balance", "ok 100")
	c.expectEventually(t, "get acct-1 balance", "ok 100")
	a.send(t, "set acct-1 balance 150")
	a.expect(t, "ok set acct-1.balance")
	// A threshold commit returns once a strict majority acked; the last
	// replica catches up through the background straggler send, so the
	// remote read polls for convergence instead of asserting immediately.
	c.expectEventually(t, "get acct-1 balance", "ok 150")

	// Kill one replica. A strict-majority quorum commit (2 of 3, incl. the
	// coordinator) must still succeed for the survivors.
	c.kill(t)
	a.send(t, "set acct-1 balance 200")
	a.expect(t, "ok set acct-1.balance")
	b.expectEventually(t, "get acct-1 balance", "ok 200")

	// Restart the killed node on the same address (fresh process, empty
	// state) and reconcile: it must adopt the object and converge on the
	// quorum-committed value.
	c2 := startNode(t, bin, "c", peers)
	c2.expect(t, "ready")
	c2.send(t, "reconcile")
	line := c2.expect(t, "ok created=1")
	if !strings.Contains(line, "conflicts=0") {
		t.Fatalf("reconcile reported conflicts: %q", line)
	}
	c2.send(t, "get acct-1 balance")
	c2.expect(t, "ok 200")

	for _, p := range []*proc{a, b, c2} {
		p.send(t, "exit")
	}
}

// proc is one dedisys-node process under test: stdin for commands, stdout
// drained into a line channel for expectations.
type proc struct {
	id    string
	cmd   *exec.Cmd
	stdin io.WriteCloser
	lines chan string
}

func startNode(t *testing.T, bin, id, peers string) *proc {
	t.Helper()
	cmd := exec.Command(bin, "-id", id, "-peers", peers, "-protocol", "quorum")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start node %s: %v", id, err)
	}
	p := &proc{id: id, cmd: cmd, stdin: stdin, lines: make(chan string, 64)}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			p.lines <- sc.Text()
		}
		close(p.lines)
	}()
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return p
}

func (p *proc) send(t *testing.T, line string) {
	t.Helper()
	if _, err := io.WriteString(p.stdin, line+"\n"); err != nil {
		t.Fatalf("node %s: send %q: %v", p.id, line, err)
	}
}

// expect waits for the next output line and requires the given prefix,
// returning the full line.
func (p *proc) expect(t *testing.T, prefix string) string {
	t.Helper()
	select {
	case line, ok := <-p.lines:
		if !ok {
			t.Fatalf("node %s: exited while waiting for %q", p.id, prefix)
		}
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("node %s: got %q, want prefix %q", p.id, line, prefix)
		}
		return line
	case <-time.After(60 * time.Second):
		t.Fatalf("node %s: timeout waiting for %q", p.id, prefix)
	}
	return ""
}

// expectEventually re-issues a command until its response carries the
// wanted prefix — for reads racing a threshold commit's background
// straggler propagation.
func (p *proc) expectEventually(t *testing.T, command, prefix string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		p.send(t, command)
		line, ok := <-p.lines
		if !ok {
			t.Fatalf("node %s: exited while polling for %q", p.id, prefix)
		}
		if strings.HasPrefix(line, prefix) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s: %q never answered %q (last: %q)", p.id, command, prefix, line)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (p *proc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill node %s: %v", p.id, err)
	}
	p.cmd.Wait()
}

// Command dedisys-node runs one DeDiSys middleware node as its own OS
// process over the real-wire transport (length-prefixed gob frames on TCP
// or unix-domain sockets). Every process of a deployment is started with
// the same -peers list; membership is static and derived from it, so all
// processes agree on the node universe and the placement ring.
//
// Usage:
//
//	dedisys-node -id a -peers a=unix:/tmp/a.sock,b=unix:/tmp/b.sock,c=unix:/tmp/c.sock
//
// After the node assembled and every peer answered a liveness probe it
// prints "ready" and serves a line-oriented REPL on stdin (one command per
// line, one "ok ..." or "err: ..." response line per command):
//
//	create <id> [key=value ...]   create a replicated Entity (home = this node)
//	set <id> <key> <value>        transactional write (commits to replicas)
//	get <id> <key>                read from the local replica
//	del <id>                      transactional delete
//	bind <name> <id>              bind a name        lookup <name>   resolve it
//	view                          this node's membership view
//	mode                          consistency mode (normal/degraded)
//	reconcile                     pull + merge replica state from all peers
//	stats                         transport delivery counters
//	exit                          leave (EOF works too)
//
// Values parse as int, float or bool when they look like one, else string.
// See README.md ("Running a real cluster") for a 3-terminal example and
// DESIGN.md §13 for the transport design.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"dedisys/internal/detect"
	"dedisys/internal/gossip"
	"dedisys/internal/group"
	"dedisys/internal/node"
	"dedisys/internal/object"
	"dedisys/internal/reconcile"
	"dedisys/internal/replication"
	"dedisys/internal/transport"
	"dedisys/internal/wiretransport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dedisys-node:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dedisys-node", flag.ContinueOnError)
	var (
		id       = fs.String("id", "", "this node's ID (must appear in -peers)")
		peerSpec = fs.String("peers", "", "comma-separated id=address list; address is unix:/path or tcp:host:port")
		protocol = fs.String("protocol", "", "replica-control protocol: P4, primary-backup, primary-partition, adaptive-voting or quorum (default P4)")
		quorumK  = fs.Int("quorum-threshold", 0, "acks (incl. the coordinator) a quorum commit waits for; 0 = strict majority")
		groups   = fs.Int("groups", 0, "shard the object space across this many replica groups (0 = full replication)")
		rf       = fs.Int("replication-factor", 0, "nodes replicating each group (with -groups)")
		hb       = fs.Duration("detect", 0, "run a heartbeat failure detector with this period and drive membership from it (0 = static full views)")
		gInt     = fs.Duration("gossip-interval", 0, "run the anti-entropy gossip loop with this period (0 = off)")
		gFan     = fs.Int("gossip-fanout", 0, "peers contacted per gossip round (default 2; requires -gossip-interval)")
		wait     = fs.Duration("wait", 30*time.Second, "how long to wait for all peers before reporting ready (0 = don't wait)")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-command deadline for distributed operations")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gFan != 0 && *gInt == 0 {
		return fmt.Errorf("-gossip-fanout requires -gossip-interval")
	}
	peers, err := parsePeers(*peerSpec)
	if err != nil {
		return err
	}
	self := transport.NodeID(*id)
	if self == "" {
		return fmt.Errorf("-id is required")
	}

	proto, err := replication.ProtocolByName(*protocol, *quorumK)
	if err != nil {
		return err
	}

	wire, err := wiretransport.New(self, peers)
	if err != nil {
		return err
	}
	if err := wire.Start(); err != nil {
		return err
	}
	defer wire.Close()

	var gmsOpts []group.Option
	var detectCfg *detect.Config
	if *hb > 0 {
		gmsOpts = append(gmsOpts, group.WithDetector())
		detectCfg = &detect.Config{Interval: *hb}
	}
	gms := group.NewMembership(wire, gmsOpts...)

	var gossipCfg *gossip.Config
	if *gInt > 0 {
		gossipCfg = &gossip.Config{Interval: *gInt, Fanout: *gFan}
	}

	n, err := node.New(node.Options{
		ID:                self,
		Net:               wire,
		GMS:               gms,
		Protocol:          proto,
		Groups:            *groups,
		ReplicationFactor: *rf,
		Detect:            detectCfg,
		Gossip:            gossipCfg,
	})
	if err != nil {
		return err
	}
	defer n.Stop()
	n.RegisterSchema(entitySchema())

	if *wait > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *wait)
		err := wire.WaitPeers(ctx)
		cancel()
		if err != nil {
			return err
		}
	}
	fmt.Println("ready")

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "exit" || fields[0] == "quit" {
			break
		}
		fmt.Println(execute(n, wire, fields, *timeout))
	}
	return sc.Err()
}

// execute runs one REPL command and renders its single response line.
func execute(n *node.Node, wire *wiretransport.Wire, fields []string, timeout time.Duration) string {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "create":
		if len(args) < 1 {
			return "err: usage: create <id> [key=value ...]"
		}
		attrs := object.State{}
		for _, kv := range args[1:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Sprintf("err: bad attribute %q (want key=value)", kv)
			}
			attrs[k] = parseValue(v)
		}
		info := replication.NewInfo(n.ID, wire.Nodes())
		if err := n.CreateCtx(ctx, "Entity", object.ID(args[0]), attrs, info); err != nil {
			return "err: " + err.Error()
		}
		return "ok created " + args[0]
	case "set":
		if len(args) != 3 {
			return "err: usage: set <id> <key> <value>"
		}
		if _, err := n.InvokeCtx(ctx, object.ID(args[0]), "SetAttr", args[1], parseValue(args[2])); err != nil {
			return "err: " + err.Error()
		}
		return fmt.Sprintf("ok set %s.%s", args[0], args[1])
	case "get":
		if len(args) != 2 {
			return "err: usage: get <id> <key>"
		}
		v, err := n.InvokeCtx(ctx, object.ID(args[0]), "GetAttr", args[1])
		if err != nil {
			return "err: " + err.Error()
		}
		return fmt.Sprintf("ok %v", v)
	case "del":
		if len(args) != 1 {
			return "err: usage: del <id>"
		}
		if err := n.DeleteCtx(ctx, object.ID(args[0])); err != nil {
			return "err: " + err.Error()
		}
		return "ok deleted " + args[0]
	case "bind":
		if len(args) != 2 {
			return "err: usage: bind <name> <id>"
		}
		if err := n.Naming.Bind(args[0], object.ID(args[1])); err != nil {
			return "err: " + err.Error()
		}
		return "ok bound " + args[0]
	case "lookup":
		if len(args) != 1 {
			return "err: usage: lookup <name>"
		}
		id, err := n.Naming.Lookup(args[0])
		if err != nil {
			return "err: " + err.Error()
		}
		return "ok " + string(id)
	case "view":
		v := n.GMS().ViewOf(n.ID)
		return fmt.Sprintf("ok epoch=%d members=%v", v.Epoch, v.Members)
	case "mode":
		return fmt.Sprintf("ok %v", n.Mode())
	case "reconcile":
		var peers []transport.NodeID
		for _, p := range wire.Nodes() {
			if p != n.ID {
				peers = append(peers, p)
			}
		}
		rep, err := reconcile.Run(ctx, n, peers, reconcile.Handlers{})
		if err != nil {
			return "err: " + err.Error()
		}
		return fmt.Sprintf("ok created=%d adopted=%d pushed=%d conflicts=%d reevaluated=%d",
			rep.Replica.Created, rep.Replica.Adopted, rep.Replica.Pushed, rep.Replica.Conflicts, rep.Constraint.Reevaluated)
	case "stats":
		s := wire.Stats()
		return fmt.Sprintf("ok messages=%d failures=%d retries=%d", s.Messages, s.Failures, s.Retries)
	default:
		return fmt.Sprintf("err: unknown command %q", cmd)
	}
}

// entitySchema is the generic replicated bean served by the REPL: a bag of
// attributes with one transactional write and one read. SetAttr/GetAttr are
// registered with explicit kinds so routing (writes to the coordinator,
// reads to the local replica) never depends on name-prefix defaults.
func entitySchema() *object.Schema {
	s := object.NewSchema("Entity")
	s.DefineKind("SetAttr", object.Write, func(e *object.Entity, args []any) (any, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("SetAttr wants (key, value), got %d args", len(args))
		}
		key, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("SetAttr key must be a string, got %T", args[0])
		}
		e.Set(key, args[1])
		return "ok", nil
	})
	s.DefineKind("GetAttr", object.Read, func(e *object.Entity, args []any) (any, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("GetAttr wants (key), got %d args", len(args))
		}
		key, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("GetAttr key must be a string, got %T", args[0])
		}
		return e.Get(key)
	})
	return s
}

// parsePeers parses "a=unix:/tmp/a.sock,b=tcp:127.0.0.1:7001,...".
func parsePeers(spec string) (map[transport.NodeID]string, error) {
	if spec == "" {
		return nil, fmt.Errorf("-peers is required")
	}
	peers := make(map[transport.NodeID]string)
	for _, entry := range strings.Split(spec, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=address)", entry)
		}
		if _, dup := peers[transport.NodeID(id)]; dup {
			return nil, fmt.Errorf("duplicate node %q in -peers", id)
		}
		peers[transport.NodeID(id)] = addr
	}
	ids := make([]string, 0, len(peers))
	for id := range peers {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	return peers, nil
}

// parseValue interprets a REPL literal: int, float and bool when they look
// like one, string otherwise.
func parseValue(s string) any {
	if i, err := strconv.Atoi(s); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	if b, err := strconv.ParseBool(s); err == nil {
		return b
	}
	return s
}
